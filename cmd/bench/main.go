// Command bench runs the substrate and engine benchmarks that track the
// ROADMAP performance trajectory and writes the results as JSON. CI runs it
// on every push and uploads the file as an artifact (BENCH_PR10.json), so
// the repo accumulates comparable data points over time.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_PR10.json -label post-stream-mesh
//	go run ./cmd/bench -against BENCH_PR8.json -out BENCH_PR10.json
//	go run ./cmd/bench -trace bench-trace.json
//
// The benchmark set mirrors BenchmarkEngines (all four execution engines on
// the same BarabasiAlbert coreness run — the net rows measure the wire
// protocol over in-memory pipes and over real unix sockets, and the stream
// rows the PR 10 worker↔worker mesh, whose per-worker wire totals land in
// the row's stream_wire summary), the prod-scale
// rows (PR 8: seq vs the worker pool vs the 4-shard cluster on one
// BarabasiAlbert coreness run at -prodn nodes, 10⁶ by default — the scale
// the worker-pool rewrite is for; 0 disables them), the substrate
// micro-benchmarks (graph build, delivery loop) that the CSR/arena refactor
// targets, the churn rows — what one churn event costs as a fresh
// recompute, as an incremental dynamic.Maintainer repair, and as a churned
// (delta + rebalance) sharded cluster run — and the session rows: one
// steady-state delta epoch through a hot 4-worker session (connections,
// partitions and oracles all warm), the PR 6 path that replaces the PR 5
// churn-then-rerun cycle. With -against, a previous report is embedded as
// "baseline" and per-benchmark speedups are printed and recorded.
//
// Rows with a tracing seam also carry a "phases" breakdown (PR 7): after
// the timed (untraced) iterations, the same workload runs once more on an
// internal/obs tracer and the per-phase micros/bytes/span totals of that
// run are recorded on the row. The timed numbers are never contaminated —
// attribution is a separate run — and the bytes columns are deterministic,
// so the report says *where* an engine's wire bytes and wall time go (the
// net rows expose the coordinator relay funnel; the session rows split an
// epoch into repair, rebalance and publish). -trace additionally exports
// the whole attribution pass — every engine plus the session epochs, one
// clock — as Chrome trace-event JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"distkcore/internal/cliutil"
	"distkcore/internal/core"
	"distkcore/internal/dist"
	"distkcore/internal/dynamic"
	"distkcore/internal/graph"
	dnet "distkcore/internal/net"
	"distkcore/internal/obs"
	"distkcore/internal/session"
	"distkcore/internal/shard"
)

// Result is one benchmark row (ns/op, B/op, allocs/op as in `go test -bench`).
// Phases, when present, is the per-phase breakdown of one traced run of the
// same workload (obs.PhaseTotal keys, shared with cmd/cluster's report).
type Result struct {
	Name     string           `json:"name"`
	Iters    int              `json:"iterations"`
	NsPerOp  float64          `json:"ns_op"`
	BytesOp  int64            `json:"b_op"`
	AllocsOp int64            `json:"allocs_op"`
	Phases   []obs.PhaseTotal `json:"phases,omitempty"`
	Wire     *StreamWireRow   `json:"stream_wire,omitempty"`
}

// StreamWireRow summarizes a streamed row's data-plane load (PR 10): how
// many bytes the busiest worker put on mesh links, the cluster total, and
// how much of it was hypercube relay on behalf of third parties. The
// numbers are deterministic, so they are comparable across reports — the
// max_worker_bytes column is the one the coordinator-funnel claim rides on.
type StreamWireRow struct {
	MaxWorkerBytes int64 `json:"max_worker_bytes"`
	TotalBytes     int64 `json:"total_bytes"`
	RelayedBytes   int64 `json:"relayed_bytes"`
	Chunks         int64 `json:"chunks"`
}

// Report is the file cmd/bench writes. Baseline, when present, is an earlier
// Report to compare against (the pre-refactor numbers for PR 3).
type Report struct {
	Label     string             `json:"label"`
	Go        string             `json:"go"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	CPUs      int                `json:"cpus"`
	Nodes     int                `json:"nodes"`
	Rounds    int                `json:"rounds"`
	ProdNodes int                `json:"prod_nodes,omitempty"` // node count of the prod/* rows (0 = rows disabled)
	Results   []Result           `json:"results"`
	Baseline  *Report            `json:"baseline,omitempty"`
	SpeedupNs map[string]float64 `json:"speedup_ns,omitempty"`   // baseline ns/op ÷ current
	AllocsCut map[string]float64 `json:"allocs_ratio,omitempty"` // baseline allocs/op ÷ current
}

// flood is a deliver-heavy protocol: every node broadcasts every round, so
// the benchmark is dominated by the runtime's mailbox machinery rather than
// algorithm work. It is the cmd-level twin of dist's BenchmarkDeliver.
type flood struct{ rounds int }

func (f *flood) Init(c *dist.Ctx) { c.Broadcast(dist.Message{F0: 1}) }
func (f *flood) Round(c *dist.Ctx, inbox []dist.Message) {
	if c.Round() >= f.rounds {
		c.Halt()
		return
	}
	s := 0.0
	for _, m := range inbox {
		s += m.F0
	}
	c.Broadcast(dist.Message{F0: s})
}

func main() {
	var (
		out      = flag.String("out", "BENCH_PR10.json", "output JSON path ('-' for stdout)")
		label    = flag.String("label", "current", "label recorded in the report")
		n        = flag.Int("n", 10_000, "BarabasiAlbert node count for the engine workload")
		prodn    = flag.Int("prodn", 1_000_000, "BarabasiAlbert node count for the prod-scale rows (0 disables)")
		against  = flag.String("against", "", "previous report to embed as baseline")
		traceOut = flag.String("trace", "", cliutil.TraceUsage)
	)
	flag.Parse()

	g := graph.BarabasiAlbert(*n, 4, 7)
	T := core.TForEpsilon(*n, 0.5)
	rep := Report{
		Label:  *label,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Nodes:  *n,
		Rounds: T,
	}
	// One tracer spans every attribution run, so -trace exports the whole
	// pass (all engines, then the session epochs) on a single clock; each
	// row's phase totals are the delta over its own attribution run.
	tr := obs.NewTracer()

	unixNet := dnet.NewEngine(4, shard.Greedy{})
	unixNet.Transport = dnet.TransportUnix
	// PR 10 stream rows: same workload, round frames carried worker↔worker
	// instead of through the coordinator funnel. net4 runs the full mesh;
	// net16 sits at the default threshold and so exercises hypercube relay.
	streamNet4 := dnet.NewEngine(4, shard.Greedy{})
	streamNet4.Stream = true
	streamNet16 := dnet.NewEngine(16, shard.Hash{})
	streamNet16.Stream = true
	engines := []struct {
		name string
		eng  dist.Engine
	}{
		{"engines/seq", dist.SeqEngine{}},
		{"engines/par", dist.ParEngine{}},
		{"engines/shard4-greedy", shard.NewEngine(4, shard.Greedy{})},
		{"engines/shard16-hash", shard.NewEngine(16, shard.Hash{})},
		{"engines/net4-greedy-pipe", dnet.NewEngine(4, shard.Greedy{})},
		{"engines/net4-greedy-unix", unixNet},
		{"engines/net4-greedy-stream", streamNet4},
		{"engines/net16-hash-stream", streamNet16},
	}
	for _, c := range engines {
		c := c
		rep.add(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.RunDistributed(g, core.Options{Rounds: T}, c.eng)
			}
		})
		rep.attrib(c.name, tr, func() {
			core.RunDistributed(g, core.Options{Rounds: T}, cliutil.Traced(c.eng, tr))
		})
	}
	rep.wire("engines/net4-greedy-stream", streamNet4)
	rep.wire("engines/net16-hash-stream", streamNet16)

	// Prod-scale rows (PR 8): the workload the worker-pool rewrite exists
	// for — one coreness run at -prodn nodes on the three engines a single
	// machine would actually choose between. Only the parallel row gets a
	// phase attribution pass (each traced run is another minute-plus at
	// 10⁶ nodes); the step/deliver split is what the pool changes.
	if *prodn > 0 {
		pg := graph.BarabasiAlbert(*prodn, 4, 7)
		pT := core.TForEpsilon(*prodn, 0.5)
		rep.ProdNodes = *prodn
		for _, c := range []struct {
			name string
			eng  dist.Engine
		}{
			{"prod/seq", dist.SeqEngine{}},
			{"prod/par", dist.ParEngine{}},
			{"prod/shard4-greedy", shard.NewEngine(4, shard.Greedy{})},
		} {
			c := c
			rep.add(c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.RunDistributed(pg, core.Options{Rounds: pT}, c.eng)
				}
			})
		}
		rep.attrib("prod/par", tr, func() {
			core.RunDistributed(pg, core.Options{Rounds: pT}, cliutil.Traced(dist.ParEngine{}, tr))
		})
	}

	edges := g.Edges()
	rep.add("graph/build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bld := graph.NewBuilder(*n)
			for _, e := range edges {
				bld.AddEdge(e.U, e.V, e.W)
			}
			bld.Build()
		}
	})

	fg := graph.BarabasiAlbert(2_000, 4, 7)
	rep.add("dist/deliver-flood", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.SeqEngine{}.Run(fg, func(graph.NodeID) dist.Program { return &flood{rounds: 20} }, 25)
		}
	})
	rep.attrib("dist/deliver-flood", tr, func() {
		dist.SeqEngine{Trace: tr}.Run(fg, func(graph.NodeID) dist.Program { return &flood{rounds: 20} }, 25)
	})

	// Churn trajectory (PR 5): the three ways to absorb one edge change.
	// fresh-recompute is the no-maintenance baseline — rebuild β from
	// scratch on the mutated graph; incremental-maintainer repairs only the
	// change frontier (one insert + one delete per op, so state is restored
	// every iteration and the numbers stay comparable run to run);
	// rebalanced-cluster absorbs a 512-op delta batch through the sharded
	// engine's wire codec + incremental rebalance and then runs the full
	// protocol — compare against engines/shard4-greedy for the churn
	// overhead on top of a steady-state run.
	delta := dist.RandomChurn(g, 512, 99)
	mutated, err := delta.Apply(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.add("churn/fresh-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(mutated, core.Options{Rounds: T})
		}
	})
	mnt := dynamic.New(g, T)
	rep.add("churn/incremental-maintainer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u, v := i%*n, int(uint(i)*2654435761)%*n
			mnt.InsertEdge(u, v, 1)
			mnt.DeleteEdge(u, v)
		}
	})
	rep.add("churn/rebalanced-cluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := shard.NewEngine(4, shard.Greedy{})
			eng.Churn(delta, 0)
			core.RunDistributed(g, core.Options{Rounds: T}, eng)
		}
	})
	rep.attrib("churn/rebalanced-cluster", tr, func() {
		eng := shard.NewEngine(4, shard.Greedy{})
		eng.SetTracer(tr)
		eng.Churn(delta, 0)
		core.RunDistributed(g, core.Options{Rounds: T}, eng)
	})

	// Session steady state (PR 6): one delta epoch through a hot 4-worker
	// session — the cluster is opened once outside the timer; each
	// iteration streams a batch to the live workers, which repair
	// incrementally and re-seal the digest chain. Two batch sizes bracket
	// the story against churn/rebalanced-cluster (absorb + full re-run per
	// batch): at 32 ops — the steady drip sessions exist for — the epoch
	// is far cheaper than any full run; at 512 ops the P redundant oracles
	// each replay 512 sequential repairs and the full run wins, which is
	// the honest crossover (big rare batches belong on the PR 5 path).
	sess, err := session.Open(g, session.Options{P: 4, Rounds: T, Part: shard.Greedy{}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	defer sess.Close()
	cur, epoch := g, 0
	for _, ops := range []int{32, 512} {
		ops := ops
		rep.add(fmt.Sprintf("session/epoch-%dops", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				epoch++
				d := dist.RandomChurn(cur, ops, int64(epoch))
				if _, err := sess.Push(d, 0); err != nil {
					fmt.Fprintln(os.Stderr, "bench: session push:", err)
					os.Exit(1)
				}
				if cur, err = d.Apply(cur); err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
			}
		})
	}

	// Phase attribution for the session rows runs on a second, traced
	// session (the timed one stays untraced): one epoch per batch size,
	// split into repair / rebalance / publish / epoch spans.
	tsess, err := session.Open(g, session.Options{P: 4, Rounds: T, Part: shard.Greedy{}, Trace: tr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	tcur := g
	for _, ops := range []int{32, 512} {
		ops := ops
		rep.attrib(fmt.Sprintf("session/epoch-%dops", ops), tr, func() {
			d := dist.RandomChurn(tcur, ops, int64(1000+ops))
			if _, err := tsess.Push(d, 0); err != nil {
				fmt.Fprintln(os.Stderr, "bench: session push:", err)
				os.Exit(1)
			}
			if tcur, err = d.Apply(tcur); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
		})
	}
	tsess.Close()

	if *against != "" {
		raw, err := os.ReadFile(*against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		base := new(Report)
		if err := json.Unmarshal(raw, base); err != nil {
			fmt.Fprintln(os.Stderr, "bench: parse baseline:", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
		rep.Baseline = base
		rep.SpeedupNs = map[string]float64{}
		rep.AllocsCut = map[string]float64{}
		for _, br := range base.Results {
			for _, cr := range rep.Results {
				if cr.Name != br.Name {
					continue
				}
				if cr.NsPerOp != 0 {
					rep.SpeedupNs[cr.Name] = br.NsPerOp / cr.NsPerOp
				}
				if cr.AllocsOp != 0 {
					rep.AllocsCut[cr.Name] = float64(br.AllocsOp) / float64(cr.AllocsOp)
				}
				fmt.Fprintf(os.Stderr, "%-24s ns/op ×%.2f   allocs/op ×%.2f\n",
					cr.Name, rep.SpeedupNs[cr.Name], rep.AllocsCut[cr.Name])
			}
		}
	}

	if err := cliutil.WriteTrace(*traceOut, tr); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := obs.WriteReportFile(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintln(os.Stderr, "bench: wrote", *out)
	}
}

// add runs one benchmark with allocation reporting and records the row.
func (r *Report) add(name string, f func(*testing.B)) {
	fmt.Fprintf(os.Stderr, "bench: running %s...\n", name)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	r.Results = append(r.Results, Result{
		Name:     name,
		Iters:    res.N,
		NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
		BytesOp:  res.AllocedBytesPerOp(),
		AllocsOp: res.AllocsPerOp(),
	})
}

// wire attaches the deterministic per-worker wire summary of eng's last
// run to the named row.
func (r *Report) wire(name string, eng *dnet.Engine) {
	var s StreamWireRow
	for _, w := range eng.StreamWire() {
		v := w.Sent + w.Relayed
		s.TotalBytes += v
		s.RelayedBytes += w.Relayed
		s.Chunks += w.Chunks
		if v > s.MaxWorkerBytes {
			s.MaxWorkerBytes = v
		}
	}
	for i := range r.Results {
		if r.Results[i].Name == name {
			r.Results[i].Wire = &s
			return
		}
	}
}

// attrib runs one traced pass of a row's workload and attaches the phase
// totals that pass added to tr to the row with the given name. tr is shared
// across every attribution call (so -trace can export one merged timeline);
// the per-row breakdown is the before/after delta.
func (r *Report) attrib(name string, tr *obs.Tracer, run func()) {
	before := tr.Trace().PhaseTotals()
	run()
	after := tr.Trace().PhaseTotals()
	d := phaseDelta(before, after)
	for i := range r.Results {
		if r.Results[i].Name == name {
			r.Results[i].Phases = d
			return
		}
	}
}

// phaseDelta subtracts the before totals from the after totals per phase,
// keeping after's (canonical) phase order and dropping phases that saw no
// new spans.
func phaseDelta(before, after []obs.PhaseTotal) []obs.PhaseTotal {
	prev := make(map[string]obs.PhaseTotal, len(before))
	for _, p := range before {
		prev[p.Phase] = p
	}
	var out []obs.PhaseTotal
	for _, p := range after {
		b := prev[p.Phase]
		p.Micros -= b.Micros
		p.Bytes -= b.Bytes
		p.Count -= b.Count
		p.Spans -= b.Spans
		if p.Spans > 0 {
			out = append(out, p)
		}
	}
	return out
}
