// Command bench runs the substrate and engine benchmarks that track the
// ROADMAP performance trajectory and writes the results as JSON. CI runs it
// on every push and uploads the file as an artifact (BENCH_PR6.json), so the
// repo accumulates comparable data points over time.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_PR6.json -label post-sessions
//	go run ./cmd/bench -against baseline.json -out BENCH_PR6.json
//
// The benchmark set mirrors BenchmarkEngines (all four execution engines on
// the same BarabasiAlbert coreness run — the net rows measure the wire
// protocol over in-memory pipes and over real unix sockets), the substrate
// micro-benchmarks (graph build, delivery loop) that the CSR/arena refactor
// targets, the churn rows — what one churn event costs as a fresh
// recompute, as an incremental dynamic.Maintainer repair, and as a churned
// (delta + rebalance) sharded cluster run — and the session row: one
// steady-state delta epoch through a hot 4-worker session (connections,
// partitions and oracles all warm), the PR 6 path that replaces the PR 5
// churn-then-rerun cycle. With -against, a previous report is embedded as
// "baseline" and per-benchmark speedups are printed and recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"distkcore/internal/core"
	"distkcore/internal/dist"
	"distkcore/internal/dynamic"
	"distkcore/internal/graph"
	dnet "distkcore/internal/net"
	"distkcore/internal/session"
	"distkcore/internal/shard"
)

// Result is one benchmark row (ns/op, B/op, allocs/op as in `go test -bench`).
type Result struct {
	Name     string  `json:"name"`
	Iters    int     `json:"iterations"`
	NsPerOp  float64 `json:"ns_op"`
	BytesOp  int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// Report is the file cmd/bench writes. Baseline, when present, is an earlier
// Report to compare against (the pre-refactor numbers for PR 3).
type Report struct {
	Label     string             `json:"label"`
	Go        string             `json:"go"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	CPUs      int                `json:"cpus"`
	Nodes     int                `json:"nodes"`
	Rounds    int                `json:"rounds"`
	Results   []Result           `json:"results"`
	Baseline  *Report            `json:"baseline,omitempty"`
	SpeedupNs map[string]float64 `json:"speedup_ns,omitempty"`   // baseline ns/op ÷ current
	AllocsCut map[string]float64 `json:"allocs_ratio,omitempty"` // baseline allocs/op ÷ current
}

// flood is a deliver-heavy protocol: every node broadcasts every round, so
// the benchmark is dominated by the runtime's mailbox machinery rather than
// algorithm work. It is the cmd-level twin of dist's BenchmarkDeliver.
type flood struct{ rounds int }

func (f *flood) Init(c *dist.Ctx) { c.Broadcast(dist.Message{F0: 1}) }
func (f *flood) Round(c *dist.Ctx, inbox []dist.Message) {
	if c.Round() >= f.rounds {
		c.Halt()
		return
	}
	s := 0.0
	for _, m := range inbox {
		s += m.F0
	}
	c.Broadcast(dist.Message{F0: s})
}

func main() {
	var (
		out     = flag.String("out", "BENCH_PR6.json", "output JSON path ('-' for stdout)")
		label   = flag.String("label", "current", "label recorded in the report")
		n       = flag.Int("n", 10_000, "BarabasiAlbert node count for the engine workload")
		against = flag.String("against", "", "previous report to embed as baseline")
	)
	flag.Parse()

	g := graph.BarabasiAlbert(*n, 4, 7)
	T := core.TForEpsilon(*n, 0.5)
	rep := Report{
		Label:  *label,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Nodes:  *n,
		Rounds: T,
	}

	unixNet := dnet.NewEngine(4, shard.Greedy{})
	unixNet.Transport = dnet.TransportUnix
	engines := []struct {
		name string
		eng  dist.Engine
	}{
		{"engines/seq", dist.SeqEngine{}},
		{"engines/par", dist.ParEngine{}},
		{"engines/shard4-greedy", shard.NewEngine(4, shard.Greedy{})},
		{"engines/shard16-hash", shard.NewEngine(16, shard.Hash{})},
		{"engines/net4-greedy-pipe", dnet.NewEngine(4, shard.Greedy{})},
		{"engines/net4-greedy-unix", unixNet},
	}
	for _, c := range engines {
		c := c
		rep.add(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.RunDistributed(g, core.Options{Rounds: T}, c.eng)
			}
		})
	}

	edges := g.Edges()
	rep.add("graph/build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bld := graph.NewBuilder(*n)
			for _, e := range edges {
				bld.AddEdge(e.U, e.V, e.W)
			}
			bld.Build()
		}
	})

	fg := graph.BarabasiAlbert(2_000, 4, 7)
	rep.add("dist/deliver-flood", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist.SeqEngine{}.Run(fg, func(graph.NodeID) dist.Program { return &flood{rounds: 20} }, 25)
		}
	})

	// Churn trajectory (PR 5): the three ways to absorb one edge change.
	// fresh-recompute is the no-maintenance baseline — rebuild β from
	// scratch on the mutated graph; incremental-maintainer repairs only the
	// change frontier (one insert + one delete per op, so state is restored
	// every iteration and the numbers stay comparable run to run);
	// rebalanced-cluster absorbs a 512-op delta batch through the sharded
	// engine's wire codec + incremental rebalance and then runs the full
	// protocol — compare against engines/shard4-greedy for the churn
	// overhead on top of a steady-state run.
	delta := dist.RandomChurn(g, 512, 99)
	mutated, err := delta.Apply(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.add("churn/fresh-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(mutated, core.Options{Rounds: T})
		}
	})
	mnt := dynamic.New(g, T)
	rep.add("churn/incremental-maintainer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u, v := i%*n, int(uint(i)*2654435761)%*n
			mnt.InsertEdge(u, v, 1)
			mnt.DeleteEdge(u, v)
		}
	})
	rep.add("churn/rebalanced-cluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := shard.NewEngine(4, shard.Greedy{})
			eng.Churn(delta, 0)
			core.RunDistributed(g, core.Options{Rounds: T}, eng)
		}
	})

	// Session steady state (PR 6): one delta epoch through a hot 4-worker
	// session — the cluster is opened once outside the timer; each
	// iteration streams a batch to the live workers, which repair
	// incrementally and re-seal the digest chain. Two batch sizes bracket
	// the story against churn/rebalanced-cluster (absorb + full re-run per
	// batch): at 32 ops — the steady drip sessions exist for — the epoch
	// is far cheaper than any full run; at 512 ops the P redundant oracles
	// each replay 512 sequential repairs and the full run wins, which is
	// the honest crossover (big rare batches belong on the PR 5 path).
	sess, err := session.Open(g, session.Options{P: 4, Rounds: T, Part: shard.Greedy{}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	defer sess.Close()
	cur, epoch := g, 0
	for _, ops := range []int{32, 512} {
		ops := ops
		rep.add(fmt.Sprintf("session/epoch-%dops", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				epoch++
				d := dist.RandomChurn(cur, ops, int64(epoch))
				if _, err := sess.Push(d, 0); err != nil {
					fmt.Fprintln(os.Stderr, "bench: session push:", err)
					os.Exit(1)
				}
				if cur, err = d.Apply(cur); err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
			}
		})
	}

	if *against != "" {
		raw, err := os.ReadFile(*against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		base := new(Report)
		if err := json.Unmarshal(raw, base); err != nil {
			fmt.Fprintln(os.Stderr, "bench: parse baseline:", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
		rep.Baseline = base
		rep.SpeedupNs = map[string]float64{}
		rep.AllocsCut = map[string]float64{}
		for _, br := range base.Results {
			for _, cr := range rep.Results {
				if cr.Name != br.Name {
					continue
				}
				if cr.NsPerOp != 0 {
					rep.SpeedupNs[cr.Name] = br.NsPerOp / cr.NsPerOp
				}
				if cr.AllocsOp != 0 {
					rep.AllocsCut[cr.Name] = float64(br.AllocsOp) / float64(cr.AllocsOp)
				}
				fmt.Fprintf(os.Stderr, "%-24s ns/op ×%.2f   allocs/op ×%.2f\n",
					cr.Name, rep.SpeedupNs[cr.Name], rep.AllocsCut[cr.Name])
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bench: wrote", *out)
}

// add runs one benchmark with allocation reporting and records the row.
func (r *Report) add(name string, f func(*testing.B)) {
	fmt.Fprintf(os.Stderr, "bench: running %s...\n", name)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	r.Results = append(r.Results, Result{
		Name:     name,
		Iters:    res.N,
		NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
		BytesOp:  res.AllocedBytesPerOp(),
		AllocsOp: res.AllocsPerOp(),
	})
}
