// Command densest runs the distributed weak densest subset algorithm
// (Theorem I.3) and the centralized baselines on a graph.
//
// Usage:
//
//	densest -gen planted -n 2000 -gamma 3
//	densest -in graph.txt -gamma 2.5 -members
package main

import (
	"flag"
	"fmt"
	"os"

	"distkcore/internal/cliutil"
	"distkcore/internal/densest"
	"distkcore/internal/exact"
)

func main() {
	in := flag.String("in", "", "edge-list file; empty = use -gen")
	gen := flag.String("gen", "planted", "generator: er|ba|rmat|grid|caveman|planted")
	n := flag.Int("n", 2000, "generator size")
	seed := flag.Int64("seed", 1, "generator seed")
	gamma := flag.Float64("gamma", 3, "target approximation γ > 2")
	members := flag.Bool("members", false, "list the members of each returned subset")
	flag.Parse()

	g, err := cliutil.LoadGraph(*in, *gen, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "densest:", err)
		os.Exit(1)
	}
	res := densest.Weak(g, densest.Config{Gamma: *gamma})
	rho := exact.MaxDensity(g)
	fmt.Printf("# n=%d m=%d γ=%.2f T=%d total rounds=%d\n", g.N(), g.M(), *gamma, res.T, res.TotalRounds)
	fmt.Printf("exact ρ* = %.4f\n", rho)
	_, greedy := exact.CharikarPeel(g)
	fmt.Printf("charikar greedy density = %.4f\n", greedy)
	fmt.Printf("weak distributed: %d disjoint subsets\n", len(res.Subsets))
	for i, s := range res.Subsets {
		fmt.Printf("  subset %d: leader=%d |S|=%d density=%.4f (ρ*/density=%.3f) t*=%d\n",
			i, s.Leader, len(s.Members), s.Density, rho/s.Density, s.TStar)
		if *members {
			fmt.Printf("    members: %v\n", s.Members)
		}
	}
	if best := res.Best(); best != nil {
		ok := densest.GuaranteeHolds(res, *gamma, rho)
		fmt.Printf("guarantee density ≥ ρ*/γ: %v (best %.4f ≥ %.4f)\n", ok, best.Density, rho/(*gamma))
	} else {
		fmt.Println("no subset accepted (graph may be edgeless)")
	}
}
