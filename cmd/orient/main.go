// Command orient computes a distributed approximate min-max edge
// orientation (Theorem I.2) and compares it to the baselines.
//
// Usage:
//
//	orient -gen ba -n 5000 -eps 0.5
//	orient -in graph.txt -weights uniform -baselines
//
// Output: a summary of max load vs the ρ* lower bound (and the exact
// optimum for unit weights), optionally one line per edge "eid owner".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"distkcore/internal/cliutil"
	"distkcore/internal/core"
	"distkcore/internal/exact"
	"distkcore/internal/graph"
	"distkcore/internal/orient"
)

func main() {
	in := flag.String("in", "", "edge-list file; empty = use -gen")
	gen := flag.String("gen", "ba", "generator: er|ba|rmat|grid|caveman|planted")
	n := flag.Int("n", 2000, "generator size")
	seed := flag.Int64("seed", 1, "generator seed")
	eps := flag.Float64("eps", 0.5, "target approximation 2(1+eps)")
	weights := flag.String("weights", "unit", "weight model: unit|uniform|twovalued|zipf")
	baselines := flag.Bool("baselines", false, "also run two-phase/greedy baselines")
	dump := flag.Bool("dump", false, "print one line per edge: edgeID owner")
	flag.Parse()

	g, err := cliutil.LoadGraph(*in, *gen, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orient:", err)
		os.Exit(1)
	}
	switch *weights {
	case "unit":
	case "uniform":
		g = graph.Apply(g, graph.UniformWeights{Lo: 1, Hi: 9}, *seed+1)
	case "twovalued":
		g = graph.Apply(g, graph.TwoValued{K: 8, P: 0.3}, *seed+1)
	case "zipf":
		g = graph.Apply(g, graph.ZipfWeights{S: 1.5, Cap: 256}, *seed+1)
	default:
		fmt.Fprintf(os.Stderr, "orient: unknown weight model %q\n", *weights)
		os.Exit(2)
	}

	T := core.TForEpsilon(g.N(), *eps)
	o, load, _ := orient.Approximate(g, T)
	rho := exact.MaxDensity(g)
	fmt.Printf("# n=%d m=%d T=%d weights=%s\n", g.N(), g.M(), T, *weights)
	fmt.Printf("primal-dual: max load %.4f  (ρ* lower bound %.4f, ratio %.4f, feasible %v)\n",
		load, rho, load/rho, o.Feasible(g))
	if g.IsUnitWeight() && g.N() <= 20000 {
		_, opt := exact.ExactOrientationUnit(g)
		fmt.Printf("exact unit-weight optimum: %d  (ratio %.4f)\n", opt, load/float64(opt))
	}
	if *baselines {
		tp := orient.TwoPhase(g, *eps, T, false)
		fmt.Printf("two-phase (no oracle): max load %.4f  ratio %.4f  (%d peel rounds)\n",
			tp.MaxLoad, tp.MaxLoad/rho, tp.PeelRounds)
		gr := exact.GreedyOrientation(g)
		fmt.Printf("centralized greedy: max load %.4f  ratio %.4f\n", gr.MaxLoad(g), gr.MaxLoad(g)/rho)
	}
	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for eid, owner := range o.Owner {
			fmt.Fprintf(w, "%d %d\n", eid, owner)
		}
	}
}
