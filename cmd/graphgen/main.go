// Command graphgen writes a synthetic graph in the edge-list format the
// other tools (and the semi-external pipeline) consume.
//
// Usage:
//
//	graphgen -gen ba -n 10000 -seed 7 -o graph.txt
//	graphgen -gen ws -n 5000 -weights uniform -o /dev/stdout
//	graphgen -preset as-skitter-like -o skitter.txt
//	graphgen -stats -gen rmat -n 4096 -o g.txt   # also print a profile
package main

import (
	"flag"
	"fmt"
	"os"

	"distkcore/internal/cliutil"
	"distkcore/internal/graph"
)

func main() {
	gen := flag.String("gen", "ba", "generator: er|ba|rmat|grid|caveman|planted|ws|geo")
	preset := flag.String("preset", "", "named preset (overrides -gen); see graph.AllPresets")
	n := flag.Int("n", 10000, "generator size")
	seed := flag.Int64("seed", 1, "generator seed")
	weights := flag.String("weights", "unit", "weight model: unit|uniform|twovalued|zipf")
	out := flag.String("o", "", "output file (required)")
	compact := flag.Bool("compact", true, "omit the weight column for unit edges")
	showStats := flag.Bool("stats", false, "print a structural profile to stderr")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o is required")
		os.Exit(2)
	}
	g, err := build(*preset, *gen, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	switch *weights {
	case "unit":
	case "uniform":
		g = graph.Apply(g, graph.UniformWeights{Lo: 1, Hi: 9}, *seed+1)
	case "twovalued":
		g = graph.Apply(g, graph.TwoValued{K: 8, P: 0.3}, *seed+1)
	case "zipf":
		g = graph.Apply(g, graph.ZipfWeights{S: 1.5, Cap: 256}, *seed+1)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown weight model %q\n", *weights)
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if err := graph.WriteEdgeList(f, g, *compact); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "n=%d m=%d avg deg=%.2f clustering=%.4f assortativity=%.3f\n",
			g.N(), g.M(), graph.AverageDegree(g),
			graph.ClusteringCoefficient(g), graph.DegreeAssortativityProxy(g))
	}
}

func build(preset, gen string, n int, seed int64) (*graph.Graph, error) {
	if preset != "" {
		return graph.FromPreset(graph.Preset(preset), 1, seed)
	}
	switch gen {
	case "ws":
		return graph.WattsStrogatz(n, 6, 0.1, seed), nil
	case "geo":
		return graph.RandomGeometric(n, 1.5/float64(intSqrt(n)), seed), nil
	default:
		return cliutil.LoadGraph("", gen, n, seed)
	}
}

func intSqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}
