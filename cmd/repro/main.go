// Command repro regenerates the paper's figures, theorem tables and
// full-version empirical claims (experiments E1–E10; see DESIGN.md §4).
//
// Usage:
//
//	repro                    # run everything at full scale
//	repro -short             # CI-sized workloads
//	repro -e E3,E9           # selected experiments
//	repro -list              # show the index
//	repro -engine shard:8    # distributed runs on the sharded engine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distkcore/internal/cliutil"
	"distkcore/internal/experiments"
)

func main() {
	short := flag.Bool("short", false, "run reduced-size workloads")
	list := flag.Bool("list", false, "list experiments and exit")
	sel := flag.String("e", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 42, "generator seed")
	engineSpec := flag.String("engine", "", cliutil.EngineUsage)
	flag.Parse()

	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return
	}

	eng, err := cliutil.ParseEngine(*engineSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	cfg := experiments.Config{Short: *short, Seed: *seed, Engine: eng}
	var specs []experiments.Spec
	if *sel == "" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(*sel, ",") {
			s, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}
	for _, s := range specs {
		fmt.Println(s.Run(cfg).String())
	}
}
