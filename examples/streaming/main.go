// Streaming/dynamic maintenance: a social graph under churn. New
// friendships arrive and old ones dissolve; we keep every user's
// approximate coreness (their "influence tier") fresh with the incremental
// maintainer instead of recomputing from scratch after every change —
// the dynamic-graph extension in the spirit of Aridhi et al., built on the
// locality of the paper's Theorem I.1 (β_t depends only on the t-hop ball).
//
// The finale takes the same churn to the cluster: a 4-shard engine absorbs
// one dist.GraphDelta batch through the wire codec, the greedy partitioner
// moves only change-frontier nodes off the stale placement, and the churned
// run comes out byte-identical to rebuilding and rerunning from scratch
// (DESIGN.md §9).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"math/rand"

	"distkcore/internal/core"
	"distkcore/internal/dist"
	"distkcore/internal/dynamic"
	"distkcore/internal/graph"
	"distkcore/internal/shard"
)

func main() {
	const n = 3000
	g := graph.BarabasiAlbert(n, 4, 7)
	eps := 0.5
	T := core.TForEpsilon(n, eps)

	m := dynamic.New(g, T)
	fmt.Printf("social graph: %d users, %d edges; maintaining β with T=%d\n", n, g.M(), T)

	rng := rand.New(rand.NewSource(42))
	type pair struct{ u, v int }
	var live []pair
	for _, e := range g.Edges() {
		live = append(live, pair{e.U, e.V})
	}

	const ops = 2000
	m.Stats = dynamic.Stats{}
	for i := 0; i < ops; i++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			u, v := rng.Intn(n), rng.Intn(n)
			m.InsertEdge(u, v, 1)
			live = append(live, pair{u, v})
		} else {
			j := rng.Intn(len(live))
			p := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			m.DeleteEdge(p.u, p.v)
		}
	}

	perOp := float64(m.Stats.Reevaluated) / float64(ops)
	scratch := float64(n * T)
	fmt.Printf("\nprocessed %d churn events\n", ops)
	fmt.Printf("incremental work: %.0f node-round re-evaluations per event\n", perOp)
	fmt.Printf("from-scratch would cost %.0f per event → %.0fx saved\n", scratch, scratch/perOp)

	// Verify against a from-scratch run on the final graph.
	final := m.Graph()
	ref := core.Run(final, core.Options{Rounds: T})
	worst := 0.0
	for v := 0; v < n; v++ {
		if d := abs(ref.B[v] - m.B()[v]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max |incremental − from-scratch| over all users: %g (must be 0)\n", worst)

	// Who moved tiers? Compare against the pre-churn ranking.
	pre := core.Run(g, core.Options{Rounds: T})
	moved := 0
	for v := 0; v < n; v++ {
		if pre.B[v] != m.B()[v] {
			moved++
		}
	}
	fmt.Printf("%d of %d users changed influence tier during the churn window\n", moved, n)

	// ------------------------------------------------------------------
	// The same story on a cluster. A deployment does not hold one big
	// adjacency in one process: the graph is sharded, and a churn batch
	// must reach every shard, update the placement, and leave the
	// execution bit-for-bit reproducible. That is the GraphDelta protocol:
	// install the batch on the engine and run on the PRE-churn graph — the
	// engine ships the delta through the frame codec, applies it under the
	// canonical order, and moves only change-frontier nodes.
	fmt.Println("\n--- churned 4-shard cluster run ---")
	delta := dist.RandomChurn(g, 500, 99)
	mutated, err := delta.Apply(g)
	if err != nil {
		panic(err)
	}

	eng := shard.NewEngine(4, shard.Greedy{})
	eng.Churn(delta, 0)
	res, met := core.RunDistributed(g, core.Options{Rounds: T}, eng)

	cm := eng.ChurnMetrics()
	fmt.Printf("delta: %d ops in %d wire bytes; frontier %d nodes\n",
		delta.Len(), cm.DeltaBytes, cm.FrontierSize)
	fmt.Printf("rebalance: moved %d nodes (%.1f KB of state), edge cut %.3f → %.3f\n",
		cm.MovedNodes, float64(cm.MovedBytes)/1e3, cm.EdgeCutBefore, cm.EdgeCutAfter)

	fresh, freshMet := core.RunDistributed(mutated, core.Options{Rounds: T}, dist.SeqEngine{})
	same := met == freshMet
	for v := 0; v < n && same; v++ {
		same = res.B[v] == fresh.B[v]
	}
	fmt.Printf("churned cluster run == fresh sequential run on the mutated graph: %v\n", same)
	fmt.Printf("  (rounds=%d messages=%d wireBytes=%d)\n", met.Rounds, met.Messages, met.WireBytes)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
