// Engines: the same elimination protocol executed on the sequential
// reference engine, the worker-pool parallel engine, and the
// asynchronous event-driven simulator — with the communication metrics
// each one reports, and a traced sharded run showing the per-phase
// breakdown the observability layer collects.
//
//	go run ./examples/engines
package main

import (
	"fmt"

	"distkcore"
	"distkcore/internal/graph"
)

func main() {
	g := graph.BarabasiAlbert(500, 3, 42)
	T := distkcore.RoundsFor(g.N(), 0.5)

	seq, ms := distkcore.RunDistributedOn(g, T, distkcore.SequentialEngine())
	par, mp := distkcore.RunDistributedOn(g, T, distkcore.ParallelEngine())
	same := true
	for v := range seq.B {
		if seq.B[v] != par.B[v] {
			same = false
		}
	}
	fmt.Printf("sequential: rounds=%d messages=%d words=%d wireBytes=%d\n",
		ms.Rounds, ms.Messages, ms.Words, ms.WireBytes)
	fmt.Printf("parallel:   rounds=%d messages=%d words=%d wireBytes=%d\n",
		mp.Rounds, mp.Messages, mp.Words, mp.WireBytes)
	fmt.Printf("engines agree on every β: %v\n\n", same)

	// Congest mode: quantize transmitted values to powers of (1+λ) — the
	// wire shrinks from 8-byte words to 1–2-byte grid indices.
	_, mq := distkcore.RunDistributedQuantized(g, T, distkcore.PowerGrid(0.1),
		distkcore.SequentialEngine())
	fmt.Printf("quantized λ=0.1: wireBytes=%d (%.1f%% of Λ=ℝ)\n\n",
		mq.WireBytes, 100*float64(mq.WireBytes)/float64(ms.WireBytes))

	// The weak densest subset pipeline as a real four-phase protocol.
	wd, mw := distkcore.WeakDensestDistributed(g, 0.5, distkcore.ParallelEngine())
	fmt.Printf("weak densest: %d subsets, best density %.3f, %d rounds, %d messages\n\n",
		len(wd.Subsets), wd.Best().Density, mw.Rounds, mw.Messages)

	// Fully asynchronous: no rounds at all; converges to the EXACT coreness
	// at quiescence under any delay model, reproducibly per seed.
	b, ma := distkcore.AsyncCoreness(g, distkcore.DelayModel{Base: 1, Jitter: 5, Seed: 7}, 1e8)
	exact := distkcore.ExactCoreness(g)
	worst := 0.0
	for v := range b {
		if d := b[v] - exact[v]; d > worst || -d > worst {
			if d < 0 {
				d = -d
			}
			worst = d
		}
	}
	fmt.Printf("async: events=%d messages=%d makespan=%.2f  max|b-c|=%g\n\n",
		ma.Events, ma.Messages, ma.VirtualTime, worst)

	// Observability (DESIGN.md §11): trace a sharded run — same values,
	// same metrics, plus a per-phase account of where the time and the
	// cross-shard bytes went. Write tr.Trace() to a file with
	// WriteChromeTrace for a chrome://tracing / Perfetto timeline.
	tr := distkcore.NewTracer()
	eng := distkcore.TracedEngine(distkcore.ShardedEngine(4, distkcore.GreedyPartitioner()), tr)
	distkcore.RunDistributedOn(g, T, eng)
	for _, pt := range tr.Trace().PhaseTotals() {
		fmt.Printf("traced shard run: phase=%-12s spans=%3d  bytes=%d\n", pt.Phase, pt.Spans, pt.Bytes)
	}
}
