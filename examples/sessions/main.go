// Long-lived sessions: a monitoring deployment that never re-runs. A
// 4-worker cluster opens once on a social graph, then stays hot while
// churn streams in as delta epochs — each epoch re-converged by frontier
// repair instead of a fresh run, sealed into a digest chain, and published
// to subscribers who watch the k-core structure move (DESIGN.md §10).
//
// The punchline is the same bit-for-bit contract every engine in this repo
// honors: after every epoch the session's values are byte-identical to a
// fresh sequential run on the cumulatively mutated graph, and the chain
// digest pins the whole history.
//
//	go run ./examples/sessions
package main

import (
	"fmt"

	"distkcore"
	"distkcore/internal/graph"
)

func main() {
	const n = 2000
	g := graph.BarabasiAlbert(n, 4, 7)
	T := distkcore.RoundsFor(n, 0.5)

	s, err := distkcore.OpenSession(g, distkcore.SessionOptions{
		P:      4,
		Rounds: T,
		Part:   distkcore.GreedyPartitioner(),
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	gh, pd, vd := s.Digests()
	fmt.Printf("session open: %d users on 4 workers, T=%d\n", n, T)
	fmt.Printf("epoch 0 sealed: graph=%#x part=%#x values=%#x chain=%#x\n", gh, pd, vd, s.ChainDigest())

	// Two monitors: one watches the influencer set (top 10 by coreness
	// tier), one watches a specific account plus everyone crossing tier 5.
	watched := 87
	influencers := s.Subscribe(distkcore.TopKTopic(10))
	rising := s.Subscribe(distkcore.CorenessTopic(watched), distkcore.ThresholdTopic(5))
	fmt.Printf("subscribed: sub%d wants topk:10; sub%d wants coreness:%d, threshold:5\n\n",
		influencers, rising, watched)

	cur := g
	for epoch := 1; epoch <= 3; epoch++ {
		// A burst of churn arrives: friendships form and dissolve.
		d := distkcore.RandomChurn(cur, 150, int64(1000+epoch))
		rep, err := s.Push(d, 0)
		if err != nil {
			panic(err)
		}
		cur, err = d.Apply(cur)
		if err != nil {
			panic(err)
		}
		fmt.Printf("epoch %d: %d churn ops → %d values changed, chain=%#x\n",
			rep.Epoch, d.Len(), len(rep.Changed), rep.ChainDigest)
		for _, nf := range rep.Notifications {
			fmt.Printf("  notify %s\n", truncate(nf))
		}

		// The monitoring deployment's soundness check: the hot session is
		// bit-identical to recomputing from scratch on the mutated graph.
		ref, _ := distkcore.RunDistributedOn(cur, T, distkcore.SequentialEngine())
		got := s.Values()
		same := true
		for v := range ref.B {
			same = same && got[v] == ref.B[v]
		}
		fmt.Printf("  == fresh sequential run on the mutated graph: %v\n", same)
	}

	led, _ := s.Ledger(rising)
	fmt.Printf("\nrising-account monitor ledger: %d notifications, %d bytes, last epoch %d\n",
		led.Notified, led.NotifiedBytes, led.LastEpoch)
	if l, _ := s.Ledger(influencers); l.Notified == 0 {
		fmt.Println("influencer monitor ledger: quiet — the top-10 set never changed")
	}
}

// truncate keeps a notification line readable when a topic fires for many
// nodes at once.
func truncate(nf distkcore.Notification) string {
	if len(nf.Changes) <= 6 {
		return nf.String()
	}
	head := nf
	head.Changes = nf.Changes[:6]
	return fmt.Sprintf("%s … (+%d more)", head, len(nf.Changes)-6)
}
