// Social-network influence ranking: the paper's introduction motivates
// approximate coreness by the "good spreading" property of high-coreness
// users (Kitsak et al.). This example builds a scale-free social graph,
// ranks users by the distributed O(log n)-round approximation, and checks
// how well the top tier agrees with the exact coreness ranking that a
// centralized Ω(n)-round computation would give.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"sort"

	"distkcore"
	"distkcore/internal/graph"
)

func main() {
	const n = 5000
	g := graph.BarabasiAlbert(n, 5, 2024)

	eps := 0.25
	res := distkcore.ApproxCoreness(g, eps)
	exactC := distkcore.ExactCoreness(g)

	fmt.Printf("social graph: %d users, %d friendships\n", g.N(), g.M())
	fmt.Printf("distributed ranking computed in T=%d rounds (guarantee %.2f)\n\n", res.T, res.Guarantee)

	topApprox := topK(res.B, 100)
	topExact := topK(exactC, 100)
	fmt.Printf("overlap of top-100 influencers (approx vs exact): %d%%\n",
		overlap(topApprox, topExact))

	// The approximation never under-ranks: β ≥ c for every user.
	under := 0
	for v := range exactC {
		if res.B[v] < exactC[v]-1e-9 {
			under++
		}
	}
	fmt.Printf("users under-estimated: %d (Lemma III.2 says 0)\n", under)

	// Show the podium.
	fmt.Println("\ntop-5 spreaders by approximate coreness:")
	for i := 0; i < 5; i++ {
		v := topApprox[i]
		fmt.Printf("  user %4d: β=%.1f  exact c=%.1f  degree %d\n",
			v, res.B[v], exactC[v], g.Degree(v))
	}
}

func topK(score []float64, k int) []int {
	idx := make([]int, len(score))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if score[idx[a]] != score[idx[b]] {
			return score[idx[a]] > score[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

func overlap(a, b []int) int {
	in := make(map[int]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	c := 0
	for _, v := range b {
		if in[v] {
			c++
		}
	}
	return 100 * c / len(a)
}
