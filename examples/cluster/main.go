// Cluster: the elimination protocol deployed on the sharded cluster
// engine — P worker shards, cross-shard traffic batched into per-round
// frames — making the paper's deployment question measurable: once the
// protocol itself is O(log n) rounds of Congest-sized messages, the cost
// that remains is *placement*, i.e. how many of those messages cross
// machine boundaries.
//
//	go run ./examples/cluster
package main

import (
	"fmt"

	"distkcore"
	"distkcore/internal/graph"
)

func main() {
	// A power-law graph: the workload where placement matters most.
	g := graph.BarabasiAlbert(2000, 4, 7)
	T := distkcore.RoundsFor(g.N(), 0.5)

	// Reference run: every engine must reproduce this byte for byte.
	ref, met := distkcore.RunDistributedOn(g, T, distkcore.SequentialEngine())
	fmt.Printf("n=%d m=%d T=%d: %d messages, %d wire bytes end to end\n\n",
		g.N(), g.M(), T, met.Messages, met.WireBytes)

	// The same protocol on 8 shards under each partitioner. The protocol
	// metrics do not move — only the cluster-level frame traffic does.
	fmt.Println("partitioner  edge cut   cross msgs  frame bytes  max shard bytes")
	for _, part := range []distkcore.Partitioner{
		distkcore.HashPartitioner(),
		distkcore.RangePartitioner(),
		distkcore.GreedyPartitioner(),
	} {
		eng := distkcore.ShardedEngine(8, part)
		res, m := distkcore.RunDistributedOn(g, T, eng)
		same := m == met
		for v := range ref.B {
			same = same && res.B[v] == ref.B[v]
		}
		sm := eng.ShardMetrics()
		fmt.Printf("%-11s  %6.1f%%   %10d  %11d  %15d   identical=%v\n",
			part.Name(), 100*sm.EdgeCutFraction, sm.CrossMessages,
			sm.CrossFrameBytes, sm.MaxShardBytes, same)
	}

	// Congest mode composes: quantizing values to powers of (1+λ) shrinks
	// the frames too, because the frame codec ships grid indices.
	eng := distkcore.ShardedEngine(8, distkcore.GreedyPartitioner())
	distkcore.RunDistributedOn(g, T, eng)
	full := eng.ShardMetrics().CrossFrameBytes
	distkcore.RunDistributedQuantized(g, T, distkcore.PowerGrid(0.1), eng)
	quant := eng.ShardMetrics().CrossFrameBytes
	fmt.Printf("\ngreedy/8 frame bytes: Λ=ℝ %d → λ=0.1 grid %d (%.1f%%)\n",
		full, quant, 100*float64(quant)/float64(full))
}
