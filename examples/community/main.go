// Community detection with weak densest subsets: the paper motivates
// density as a community-quality measure (Yang & Leskovec). We build a
// network of communities of *different* internal densities, sparsely
// bridged — so the diminishingly-dense decomposition is non-trivial — and
// run the weak densest subset algorithm. It returns disjoint subsets, each
// with a leader every member knows: exactly the structure a decentralized
// community-detection protocol needs. We measure purity against the
// planted ground truth.
//
//	go run ./examples/community
package main

import (
	"fmt"
	"math/rand"

	"distkcore"
	"distkcore/internal/graph"
)

const (
	communities = 6
	csize       = 50
)

// buildNetwork plants 6 communities with internal edge probabilities
// falling from 0.6 to 0.1, plus a handful of random bridges.
func buildNetwork(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := communities * csize
	b := graph.NewBuilder(n)
	for c := 0; c < communities; c++ {
		pin := 0.6 - 0.1*float64(c)
		base := c * csize
		for u := 0; u < csize; u++ {
			for v := u + 1; v < csize; v++ {
				if rng.Float64() < pin {
					b.AddUnitEdge(base+u, base+v)
				}
			}
		}
	}
	// sparse bridges: ~2 per community pair
	for c1 := 0; c1 < communities; c1++ {
		for c2 := c1 + 1; c2 < communities; c2++ {
			for k := 0; k < 2; k++ {
				b.AddUnitEdge(c1*csize+rng.Intn(csize), c2*csize+rng.Intn(csize))
			}
		}
	}
	return b.Build()
}

func main() {
	g := buildNetwork(99)
	fmt.Printf("network: %d communities × %d members (densities 0.6 … 0.1), m=%d\n",
		communities, csize, g.M())

	eps := 0.5 // γ = 3
	res := distkcore.WeakDensest(g, eps)
	_, rho := distkcore.DensestSubset(g)
	fmt.Printf("exact ρ* = %.3f; algorithm used %d total rounds\n\n", rho, res.TotalRounds)

	fmt.Printf("recovered %d disjoint subsets:\n", len(res.Subsets))
	for i, s := range res.Subsets {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(res.Subsets)-i)
			break
		}
		purity, home := purityOf(s.Members)
		fmt.Printf("  subset %d: leader %4d, |S|=%3d, density %.2f, %3.0f%% from community %d\n",
			i, s.Leader, len(s.Members), s.Density, purity*100, home)
	}

	best := res.Best()
	if best == nil {
		fmt.Println("no subset accepted")
		return
	}
	fmt.Printf("\nbest subset density %.3f ≥ ρ*/γ = %.3f: %v\n",
		best.Density, rho/3, best.Density >= rho/3)

	// The densest community (community 0, pin=0.6) should dominate the best
	// subset.
	purity, home := purityOf(best.Members)
	fmt.Printf("best subset purity: %.0f%% from community %d (densest planted = 0)\n",
		purity*100, home)

	// every member knows its leader — the protocol's defining promise
	bad := 0
	for _, s := range res.Subsets {
		for _, v := range s.Members {
			if res.LeaderOf[v] != s.Leader {
				bad++
			}
		}
	}
	fmt.Printf("members with inconsistent leader knowledge: %d (must be 0)\n", bad)
}

// purityOf returns the fraction of members in the most common planted
// community and that community's index.
func purityOf(members []int) (float64, int) {
	count := map[int]int{}
	for _, v := range members {
		count[v/csize]++
	}
	best, home := 0, -1
	for c, k := range count {
		if k > best {
			best, home = k, c
		}
	}
	return float64(best) / float64(len(members)), home
}
