// P2P load balancing: every edge of an overlay network is a replication
// job that exactly one of its two endpoints must serve (the min-max edge
// orientation view of load balancing from the paper's related work:
// machines = nodes, jobs = edges, makespan = maximum in-degree).
//
// The example runs the primal-dual orientation of Theorem I.2 on a
// heavy-tailed overlay with weighted jobs, verifies feasibility, and
// compares the makespan against the LP lower bound ρ* and a centralized
// greedy assignment — then deploys the underlying elimination protocol on
// the real-socket cluster engine (4 workers over unix sockets) to show the
// same bytes coming out of an actual wire.
//
//	go run ./examples/p2p
package main

import (
	"fmt"

	"distkcore"
	"distkcore/internal/exact"
	"distkcore/internal/graph"
)

func main() {
	// Overlay: RMAT topology; job sizes are heavy-tailed (Zipf).
	topo := graph.RMAT(12, 8, 0.57, 0.19, 0.19, 7)
	g := graph.Apply(topo, graph.ZipfWeights{S: 1.4, Cap: 128}, 8)

	fmt.Printf("overlay: %d peers, %d jobs, total job mass %.0f\n",
		g.N(), g.M(), g.TotalWeight())

	eps := 0.5
	res := distkcore.ApproxOrientation(g, eps)
	if !res.O.Feasible(g) {
		panic("infeasible assignment — Lemma III.11 violated")
	}
	rho := exact.MaxDensity(g)
	fmt.Printf("\ndistributed primal-dual (T=%d rounds):\n", res.T)
	fmt.Printf("  makespan %.1f   LP lower bound ρ* = %.2f   ratio %.3f\n",
		res.MaxLoad, rho, res.MaxLoad/rho)

	greedy := exact.GreedyOrientation(g)
	fmt.Printf("centralized greedy:\n  makespan %.1f   ratio %.3f\n",
		greedy.MaxLoad(g), greedy.MaxLoad(g)/rho)

	// Load distribution: how many peers carry more than half the makespan?
	loads := res.O.Loads(g)
	hot := 0
	for _, l := range loads {
		if l > res.MaxLoad/2 {
			hot++
		}
	}
	fmt.Printf("\npeers above 50%% of makespan: %d of %d — the elimination's\n", hot, g.N())
	fmt.Println("per-node bound load(v) ≤ β(v) keeps hot spots rare.")

	// Per-node certificate: no peer exceeds its own surviving number.
	worstSlack := 1.0
	for v, l := range loads {
		if res.B[v] > 0 {
			if s := l / res.B[v]; s > worstSlack {
				worstSlack = s
			}
		}
	}
	fmt.Printf("max load(v)/β(v) = %.3f (must be ≤ 1)\n", worstSlack)

	// Deployment rehearsal: the surviving numbers behind that certificate
	// come from the elimination protocol, so run it as a real cluster — a
	// coordinator plus 4 workers exchanging frames over unix-domain sockets
	// — and check the wire changed nothing.
	T := distkcore.RoundsFor(g.N(), eps)
	seqRes, seqMet := distkcore.RunDistributedOn(g, T, distkcore.SequentialEngine())
	eng := distkcore.NetworkEngine(4, distkcore.GreedyPartitioner())
	eng.Transport = distkcore.TransportUnix
	netRes, netMet := distkcore.RunDistributedOn(g, T, eng)
	same := netMet == seqMet
	for v := range netRes.B {
		same = same && netRes.B[v] == seqRes.B[v]
	}
	cm := eng.ClusterMetrics()
	fmt.Printf("\ncluster deployment (4 workers, unix sockets): byte-identical to one box: %v\n", same)
	fmt.Printf("  protocol wire: %d msgs / %d bytes   cluster frames: %d msgs / %d bytes (cut %.2f)\n",
		netMet.Messages, netMet.WireBytes, cm.CrossMessages, cm.CrossFrameBytes, cm.EdgeCutFraction)
}
