// Quickstart: the three headline algorithms of the paper on one small
// graph, through the public distkcore API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"distkcore"
)

func main() {
	// A toy network: two dense communities (triangles of heavy friendship)
	// joined by a long chain of acquaintances.
	//
	//	0-1-2 triangle ... chain 3-4-5-6 ... 7-8-9 triangle
	b := distkcore.NewBuilder(10)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1).AddEdge(0, 2, 1) // community A
	b.AddEdge(2, 3, 1).AddEdge(3, 4, 1).AddEdge(4, 5, 1) // chain
	b.AddEdge(5, 6, 1).AddEdge(6, 7, 1)
	b.AddEdge(7, 8, 1).AddEdge(8, 9, 1).AddEdge(7, 9, 1) // community B
	g := b.Build()

	eps := 0.5 // target guarantee 2(1+ε) = 3

	// 1. Approximate coreness: O(log n) rounds, diameter-independent.
	cr := distkcore.ApproxCoreness(g, eps)
	exactC := distkcore.ExactCoreness(g)
	fmt.Printf("coreness after T=%d rounds (guarantee %.2f):\n", cr.T, cr.Guarantee)
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  node %d: β=%.2f  exact c=%.2f\n", v, cr.B[v], exactC[v])
	}

	// 2. Min-max edge orientation: assign every edge to an endpoint,
	// minimizing the maximum load.
	or := distkcore.ApproxOrientation(g, eps)
	fmt.Printf("\norientation: max load %.2f (feasible=%v)\n", or.MaxLoad, or.O.Feasible(g))
	_, opt := distkcore.ExactMinMaxOrientation(g)
	fmt.Printf("exact optimum for unit weights: %d\n", opt)

	// 3. Weak densest subset: disjoint subsets with leaders, one of which
	// is an approximate densest subset.
	wd := distkcore.WeakDensest(g, eps)
	_, rho := distkcore.DensestSubset(g)
	fmt.Printf("\nweak densest subsets (exact ρ* = %.3f):\n", rho)
	for _, s := range wd.Subsets {
		fmt.Printf("  leader %d: members %v, density %.3f\n", s.Leader, s.Members, s.Density)
	}
}
