// Pinned-transcript regression tests for the observability layer (PR 7,
// DESIGN.md §11). Two properties are asserted:
//
//  1. The deterministic transcript of a traced run is a pure function of
//     the execution — the tiny run below is pinned byte for byte, so any
//     drift in what the tracer records (phases, counts, bytes, ordering)
//     shows up as a literal diff.
//  2. Tracing cannot perturb executions: every engine run with a live
//     tracer produces exactly the Metrics and bit-identical values of the
//     untraced run. This is the observability twin of the PR 3 pinned
//     captures — a tracer that changed a single byte would break the
//     engines' byte-identity contract.
package distkcore_test

import (
	"math"
	"testing"

	"distkcore/internal/core"
	"distkcore/internal/dist"
	"distkcore/internal/graph"
	dnet "distkcore/internal/net"
	"distkcore/internal/obs"
	"distkcore/internal/session"
	"distkcore/internal/shard"
)

// TestPinnedSeqTranscript pins the full transcript of a 3-round coreness
// run on a 6-node cycle with one chord, traced on the sequential reference
// engine. The counts are deterministic protocol facts: 6 nodes stepped per
// round, 14 directed messages (2 per edge) delivered per round at 9 wire
// bytes each, and a final empty deliver after the last step.
func TestPinnedSeqTranscript(t *testing.T) {
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}} {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), 1)
	}
	g := b.Build()
	tr := obs.NewTracer()
	core.RunDistributed(g, core.Options{Rounds: 3}, dist.SeqEngine{Trace: tr})
	want := "span round=0 worker=-1 phase=step count=6\n" +
		"span round=0 worker=-1 phase=deliver bytes=126 count=14\n" +
		"span round=1 worker=-1 phase=step count=6\n" +
		"span round=1 worker=-1 phase=deliver bytes=126 count=14\n" +
		"span round=2 worker=-1 phase=step count=6\n" +
		"span round=2 worker=-1 phase=deliver bytes=126 count=14\n" +
		"span round=3 worker=-1 phase=step count=6\n" +
		"span round=3 worker=-1 phase=deliver\n"
	if got := tr.Trace().Transcript(); got != want {
		t.Errorf("pinned transcript drifted:\n got:\n%s\n want:\n%s", got, want)
	}
}

// TestTranscriptRerunIdentical runs the same traced execution twice on
// fresh tracers: the transcripts must be byte-equal (the canonical order
// depends only on the execution, never on the clock or scheduler). The
// shard engine is the interesting case — its spans are recorded from
// concurrent goroutines.
func TestTranscriptRerunIdentical(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 2)
	run := func() string {
		tr := obs.NewTracer()
		e := shard.NewEngine(3, shard.Greedy{})
		e.SetTracer(tr)
		core.RunDistributed(g, core.Options{Rounds: 6}, e)
		return tr.Trace().Transcript()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two runs of one execution produced different transcripts:\n--- first\n%s--- second\n%s", a, b)
	}
	if a == "" {
		t.Error("traced shard run produced an empty transcript")
	}
}

// TestTracingPreservesExecutions runs coreness on all four direct engines
// with and without a tracer and demands identical Metrics and bit-identical
// values — the zero-interference contract of DESIGN.md §11.
func TestTracingPreservesExecutions(t *testing.T) {
	g := graph.BarabasiAlbert(400, 3, 2)
	T := core.TForEpsilon(g.N(), 0.5)
	engines := []struct {
		name string
		mk   func(tr *obs.Tracer) dist.Engine
	}{
		{"seq", func(tr *obs.Tracer) dist.Engine { return dist.SeqEngine{Trace: tr} }},
		{"par", func(tr *obs.Tracer) dist.Engine { return dist.ParEngine{Trace: tr} }},
		{"par4", func(tr *obs.Tracer) dist.Engine { return dist.ParEngine{W: 4, Trace: tr} }},
		{"shard3", func(tr *obs.Tracer) dist.Engine {
			e := shard.NewEngine(3, shard.Greedy{})
			e.SetTracer(tr)
			return e
		}},
		{"net2", func(tr *obs.Tracer) dist.Engine {
			e := dnet.NewEngine(2, shard.Greedy{})
			e.SetTracer(tr)
			return e
		}},
	}
	for _, eng := range engines {
		plainRes, plainMet := core.RunDistributed(g, core.Options{Rounds: T}, eng.mk(nil))
		tr := obs.NewTracer()
		tracedRes, tracedMet := core.RunDistributed(g, core.Options{Rounds: T}, eng.mk(tr))
		if plainMet != tracedMet {
			t.Errorf("%s: tracing changed the Metrics:\n plain  %+v\n traced %+v", eng.name, plainMet, tracedMet)
		}
		for v := range plainRes.B {
			if math.Float64bits(plainRes.B[v]) != math.Float64bits(tracedRes.B[v]) {
				t.Fatalf("%s: tracing changed node %d's value: %v vs %v", eng.name, v, plainRes.B[v], tracedRes.B[v])
			}
		}
		if rt := tr.Trace(); len(rt.Spans) == 0 {
			t.Errorf("%s: traced run collected no spans", eng.name)
		}
	}
}

// TestTracingPreservesSessionEpochs is the fifth surface: a traced session
// seals the same digest chain as an untraced one over identical epochs.
func TestTracingPreservesSessionEpochs(t *testing.T) {
	g := graph.BarabasiAlbert(250, 3, 2)
	tr := obs.NewTracer()
	plain, err := session.Open(g, session.Options{P: 2, Rounds: 7, Part: shard.Greedy{}})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	traced, err := session.Open(g, session.Options{P: 2, Rounds: 7, Part: shard.Greedy{}, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()
	cur := g
	for e := 1; e <= 2; e++ {
		d := dist.RandomChurn(cur, 20, int64(e))
		rp, err1 := plain.Push(d, 0)
		rt, err2 := traced.Push(d, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("epoch %d: plain %v, traced %v", e, err1, err2)
		}
		if rp.ChainDigest != rt.ChainDigest {
			t.Fatalf("epoch %d: tracing changed the chain: %#x vs %#x", e, rp.ChainDigest, rt.ChainDigest)
		}
		if cur, err = d.Apply(cur); err != nil {
			t.Fatal(err)
		}
	}
}
