// Pinned-execution regression tests for the memory-layout refactor (PR 3,
// DESIGN.md §7): the CSR graph core, the arena mailboxes and the pooled
// shard frames must preserve byte-identical executions, so every Metrics
// value below was captured on the pre-refactor edge-list/append runtime and
// asserted verbatim ever since. The socket-cluster engine (PR 4, DESIGN.md
// §8) is held to the same absolute captures. A diff here means the
// substrate changed *semantics*, not just layout — treat it as a bug, not
// as a number to update.
package distkcore_test

import (
	"math"
	"testing"

	"distkcore/internal/core"
	"distkcore/internal/densest"
	"distkcore/internal/dist"
	"distkcore/internal/graph"
	dnet "distkcore/internal/net"
	"distkcore/internal/quantize"
	"distkcore/internal/shard"
)

func pinnedGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"ba500", graph.BarabasiAlbert(500, 3, 2)},
		{"ws400", graph.WattsStrogatz(400, 6, 0.1, 5)},
		{"er300", graph.ErdosRenyi(300, 0.05, 11)},
	}
}

// TestPinnedEngineMetrics replays coreness (exact and quantized Λ) and the
// weak densest protocol on all four engines and asserts the full Metrics
// against the pre-refactor captures.
func TestPinnedEngineMetrics(t *testing.T) {
	want := []struct {
		graph, engine, run string
		m                  dist.Metrics
	}{
		{"ba500", "seq", "core", dist.Metrics{Rounds: 16, Messages: 47808, Words: 47808, WireBytes: 454400, Halted: true}},
		{"ba500", "seq", "coreQ", dist.Metrics{Rounds: 16, Messages: 47808, Words: 47808, WireBytes: 119744, Halted: true}},
		{"ba500", "seq", "weak", dist.Metrics{Rounds: 57, Messages: 115612, Words: 131580, WireBytes: 1406785, Halted: true}},
		{"ba500", "par", "core", dist.Metrics{Rounds: 16, Messages: 47808, Words: 47808, WireBytes: 454400, Halted: true}},
		{"ba500", "par", "coreQ", dist.Metrics{Rounds: 16, Messages: 47808, Words: 47808, WireBytes: 119744, Halted: true}},
		{"ba500", "par", "weak", dist.Metrics{Rounds: 57, Messages: 115612, Words: 131580, WireBytes: 1406785, Halted: true}},
		{"ba500", "shard3greedy", "core", dist.Metrics{Rounds: 16, Messages: 47808, Words: 47808, WireBytes: 454400, Halted: true}},
		{"ba500", "shard3greedy", "coreQ", dist.Metrics{Rounds: 16, Messages: 47808, Words: 47808, WireBytes: 119744, Halted: true}},
		{"ba500", "shard3greedy", "weak", dist.Metrics{Rounds: 57, Messages: 115612, Words: 131580, WireBytes: 1406785, Halted: true}},
		{"ws400", "seq", "core", dist.Metrics{Rounds: 15, Messages: 36000, Words: 36000, WireBytes: 348405, Halted: true}},
		{"ws400", "seq", "coreQ", dist.Metrics{Rounds: 15, Messages: 36000, Words: 36000, WireBytes: 96405, Halted: true}},
		{"ws400", "seq", "weak", dist.Metrics{Rounds: 64, Messages: 107756, Words: 119726, WireBytes: 1386336, Halted: true}},
		{"ws400", "par", "core", dist.Metrics{Rounds: 15, Messages: 36000, Words: 36000, WireBytes: 348405, Halted: true}},
		{"ws400", "par", "coreQ", dist.Metrics{Rounds: 15, Messages: 36000, Words: 36000, WireBytes: 96405, Halted: true}},
		{"ws400", "par", "weak", dist.Metrics{Rounds: 64, Messages: 107756, Words: 119726, WireBytes: 1386336, Halted: true}},
		{"ws400", "shard3greedy", "core", dist.Metrics{Rounds: 15, Messages: 36000, Words: 36000, WireBytes: 348405, Halted: true}},
		{"ws400", "shard3greedy", "coreQ", dist.Metrics{Rounds: 15, Messages: 36000, Words: 36000, WireBytes: 96405, Halted: true}},
		{"ws400", "shard3greedy", "weak", dist.Metrics{Rounds: 64, Messages: 107756, Words: 119726, WireBytes: 1386336, Halted: true}},
		{"er300", "seq", "core", dist.Metrics{Rounds: 15, Messages: 67740, Words: 67740, WireBytes: 648210, Halted: true}},
		{"er300", "seq", "coreQ", dist.Metrics{Rounds: 15, Messages: 67740, Words: 67740, WireBytes: 174030, Halted: true}},
		{"er300", "seq", "weak", dist.Metrics{Rounds: 52, Messages: 201207, Words: 210177, WireBytes: 2462851, Halted: true}},
		{"er300", "par", "core", dist.Metrics{Rounds: 15, Messages: 67740, Words: 67740, WireBytes: 648210, Halted: true}},
		{"er300", "par", "coreQ", dist.Metrics{Rounds: 15, Messages: 67740, Words: 67740, WireBytes: 174030, Halted: true}},
		{"er300", "par", "weak", dist.Metrics{Rounds: 52, Messages: 201207, Words: 210177, WireBytes: 2462851, Halted: true}},
		{"er300", "shard3greedy", "core", dist.Metrics{Rounds: 15, Messages: 67740, Words: 67740, WireBytes: 648210, Halted: true}},
		{"er300", "shard3greedy", "coreQ", dist.Metrics{Rounds: 15, Messages: 67740, Words: 67740, WireBytes: 174030, Halted: true}},
		{"er300", "shard3greedy", "weak", dist.Metrics{Rounds: 52, Messages: 201207, Words: 210177, WireBytes: 2462851, Halted: true}},
	}
	engines := map[string]dist.Engine{
		"seq":          dist.SeqEngine{},
		"par":          dist.ParEngine{},
		"shard3greedy": shard.NewEngine(3, shard.Greedy{}),
		// The socket-cluster engine is pinned to the same absolute captures:
		// a real transport may not move the numbers either.
		"net2greedy": dnet.NewEngine(2, shard.Greedy{}),
		// The worker-pool parallel engine (PR 8) is pinned at explicit
		// worker counts too: concurrent range stepping and the parallel
		// arena fill may not move a byte relative to the captures.
		"par4": dist.ParEngine{W: 4},
		"par8": dist.ParEngine{W: 8},
		// The streamed worker↔worker mesh (PR 10) is pinned to the same
		// captures: direct peer frame delivery — full mesh and forced
		// hypercube relay alike — may not move a byte either.
		"net2stream":     streamPinEngine(2, 0),
		"net4streamcube": streamPinEngine(4, 4),
	}
	// The captures are engine-invariant by contract, so the net engine's
	// and the explicit-worker-count pool's expected rows are the seq rows
	// verbatim.
	for _, w := range want[:len(want):len(want)] {
		if w.engine == "seq" {
			for _, eng := range []string{"net2greedy", "par4", "par8", "net2stream", "net4streamcube"} {
				row := w
				row.engine = eng
				want = append(want, row)
			}
		}
	}
	for _, gg := range pinnedGraphs() {
		T := core.TForEpsilon(gg.g.N(), 0.5)
		for _, w := range want {
			if w.graph != gg.name {
				continue
			}
			var got dist.Metrics
			switch w.run {
			case "core":
				_, got = core.RunDistributed(gg.g, core.Options{Rounds: T}, engines[w.engine])
			case "coreQ":
				_, got = core.RunDistributed(gg.g, core.Options{Rounds: T, Lambda: quantize.NewPowerGrid(0.1)}, engines[w.engine])
			case "weak":
				_, got = densest.RunWeakDistributed(gg.g, densest.Config{Gamma: 3}, engines[w.engine])
			}
			if got != w.m {
				t.Errorf("%s/%s/%s: Metrics drifted from pre-refactor capture:\n got  %+v\n want %+v",
					w.graph, w.engine, w.run, got, w.m)
			}
		}
	}
}

// streamPinEngine builds a streamed-mesh cluster engine for the pinned
// matrix. A small chunk size forces multi-chunk flow control even on these
// mid-size graphs; threshold 4 at P=4 forces the hypercube relay topology.
func streamPinEngine(p, threshold int) *dnet.Engine {
	e := dnet.NewEngine(p, shard.Greedy{})
	e.Stream = true
	e.ChunkBytes = 1024
	e.MeshThreshold = threshold
	return e
}

// TestPinnedCorenessValues hashes the surviving numbers themselves, so a
// change in adjacency or delivery order that alters tie-breaking (while
// staying within the approximation guarantee) is still caught.
func TestPinnedCorenessValues(t *testing.T) {
	hashB := func(b []float64) uint64 {
		h := uint64(1469598103934665603)
		for _, x := range b {
			v := math.Float64bits(x)
			for i := 0; i < 8; i++ {
				h ^= v & 0xff
				h *= 1099511628211
				v >>= 8
			}
		}
		return h
	}
	want := map[string]uint64{
		"ba500": 0x3f99d538b0ed0a83,
		"ws400": 0xb5dc2ab3ac391ca7,
		"er300": 0xbf7f04e41b8a9c27,
	}
	for _, gg := range pinnedGraphs() {
		T := core.TForEpsilon(gg.g.N(), 0.5)
		res, _ := core.RunDistributed(gg.g, core.Options{Rounds: T}, dist.SeqEngine{})
		if got := hashB(res.B); got != want[gg.name] {
			t.Errorf("%s: surviving numbers drifted from pre-refactor capture: hash %#x, want %#x",
				gg.name, got, want[gg.name])
		}
	}
}
