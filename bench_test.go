// Benchmarks: one per paper artifact (experiments E1–E10, regenerating the
// corresponding figure/table rows at reduced scale per iteration) plus
// micro-benchmarks of the building blocks. Run with
//
//	go test -bench=. -benchmem
//
// cmd/repro prints the full-scale tables themselves.
package distkcore_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"distkcore"
	"distkcore/internal/core"
	"distkcore/internal/densest"
	"distkcore/internal/dist"
	"distkcore/internal/dynamic"
	"distkcore/internal/exact"
	"distkcore/internal/experiments"
	"distkcore/internal/external"
	"distkcore/internal/graph"
	"distkcore/internal/hyper"
	dnet "distkcore/internal/net"
	"distkcore/internal/orient"
	"distkcore/internal/quantize"
	"distkcore/internal/shard"
)

// --- experiment regeneration (tables & figures) ---

func benchExperiment(b *testing.B, id string) {
	spec, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiments.Config{Short: true, Seed: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := spec.Run(cfg)
		if len(rep.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1FigureI1(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2Coreness(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3Orientation(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4Densest(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5LowerBound(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Quantization(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7Exact(b *testing.B)            { benchExperiment(b, "E7") }
func BenchmarkE8DensestBaselines(b *testing.B) { benchExperiment(b, "E8") }
func BenchmarkE9OrientBaselines(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10Convergence(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11AverageRatio(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12TieBreak(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13ConflictPolicy(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14Dynamic(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15Async(b *testing.B)           { benchExperiment(b, "E15") }
func BenchmarkE16Hypergraph(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkE17SemiExternal(b *testing.B)    { benchExperiment(b, "E17") }

// --- core algorithm scaling ---

func benchGraph(n int) *graph.Graph { return graph.BarabasiAlbert(n, 4, 7) }

func BenchmarkCompactElimination1k(b *testing.B)  { benchElim(b, 1_000) }
func BenchmarkCompactElimination10k(b *testing.B) { benchElim(b, 10_000) }
func BenchmarkCompactElimination50k(b *testing.B) { benchElim(b, 50_000) }

func benchElim(b *testing.B, n int) {
	g := benchGraph(n)
	T := core.TForEpsilon(n, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(g, core.Options{Rounds: T})
	}
	b.ReportMetric(float64(T), "rounds")
}

func BenchmarkEliminationWithAux10k(b *testing.B) {
	g := benchGraph(10_000)
	T := core.TForEpsilon(10_000, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(g, core.Options{Rounds: T, TrackAux: true})
	}
}

func BenchmarkExactConvergence10k(b *testing.B) {
	g := benchGraph(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(g, core.Options{Rounds: 0}) // Montresor exact
	}
}

// --- engines: sequential loop vs the batched worker pool ---

func BenchmarkSeqEngine5k(b *testing.B) { benchEngine(b, dist.SeqEngine{}) }
func BenchmarkParEngine5k(b *testing.B) { benchEngine(b, dist.ParEngine{}) }

// BenchmarkEngines puts the four execution engines head to head on the
// same 5k-node run (CI smoke-runs it with -bench=Engine -benchtime=1x).
// The cluster rows additionally report the cross-shard frame volume the
// run ships; the net rows pay for real record IO (and, on the unix row,
// kernel round trips) on top of it.
func BenchmarkEngines(b *testing.B) {
	g := benchGraph(5_000)
	T := core.TForEpsilon(5_000, 0.5)
	unixNet := dnet.NewEngine(4, shard.Greedy{})
	unixNet.Transport = dnet.TransportUnix
	cases := []struct {
		name string
		eng  dist.Engine
	}{
		{"seq", dist.SeqEngine{}},
		{"par", dist.ParEngine{}},
		{"par4", dist.ParEngine{W: 4}},
		{"shard4-greedy", shard.NewEngine(4, shard.Greedy{})},
		{"shard16-greedy", shard.NewEngine(16, shard.Greedy{})},
		{"shard16-hash", shard.NewEngine(16, shard.Hash{})},
		{"net4-greedy-pipe", dnet.NewEngine(4, shard.Greedy{})},
		{"net4-greedy-unix", unixNet},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.RunDistributed(g, core.Options{Rounds: T}, c.eng)
			}
			switch e := c.eng.(type) {
			case *shard.Engine:
				b.ReportMetric(float64(e.ShardMetrics().CrossFrameBytes), "frameB/run")
			case *dnet.Engine:
				b.ReportMetric(float64(e.ClusterMetrics().CrossFrameBytes), "frameB/run")
			}
		})
	}
}

// TestFrameVecDecodePooled pins the PR 3 follow-up fix: decoding a frame
// full of Vec-carrying messages through a VecArena must not allocate per
// message (the arena hands out blocks that are recycled every round),
// while the arena-less path — what a correctness test that retains decoded
// messages uses — allocates one slice per Vec. The absolute bound is the
// allocs/op assertion guarding the regression.
func TestFrameVecDecodePooled(t *testing.T) {
	lam := quantize.NewPowerGrid(0.1)
	const msgs = 1000
	var buf []byte
	for i := 0; i < msgs; i++ {
		buf = shard.AppendMessage(buf, lam, graph.NodeID(i+1), dist.Message{
			From: graph.NodeID(i),
			F0:   float64(i),
			Vec:  []float64{1, 2, 3, float64(i)},
		})
	}
	decodeAll := func(arena *shard.VecArena) {
		rest := buf
		for len(rest) > 0 {
			_, m, n, err := shard.DecodeMessage(rest, lam, arena)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Vec) != 4 {
				t.Fatalf("vec length %d", len(m.Vec))
			}
			rest = rest[n:]
		}
	}
	arena := new(shard.VecArena)
	pooled := testing.AllocsPerRun(10, func() {
		arena.Reset()
		decodeAll(arena)
	})
	if pooled > 4 {
		t.Fatalf("pooled decode allocates %.0f per %d-message frame, want ≈0", pooled, msgs)
	}
	plain := testing.AllocsPerRun(5, func() { decodeAll(nil) })
	if plain < msgs {
		t.Fatalf("arena-less decode allocates %.0f, expected ≥ %d — the assertion above is not measuring Vec allocations", plain, msgs)
	}
}

func benchEngine(b *testing.B, eng dist.Engine) {
	g := benchGraph(5_000)
	T := core.TForEpsilon(5_000, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	var msgs int64
	for i := 0; i < b.N; i++ {
		_, met := core.RunDistributed(g, core.Options{Rounds: T}, eng)
		msgs = met.Messages
	}
	b.ReportMetric(float64(msgs), "msgs/run")
}

// --- exact baselines ---

func BenchmarkBZCores100k(b *testing.B) {
	g := benchGraph(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.CoresUnweighted(g)
	}
}

func BenchmarkWeightedPeel50k(b *testing.B) {
	g := graph.Apply(benchGraph(50_000), graph.UniformWeights{Lo: 1, Hi: 9}, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.CoresWeighted(g)
	}
}

func BenchmarkExactDensestFlow2k(b *testing.B) {
	g := benchGraph(2_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.Densest(g)
	}
}

func BenchmarkCharikarPeel50k(b *testing.B) {
	g := benchGraph(50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.CharikarPeel(g)
	}
}

func BenchmarkLocallyDense1k(b *testing.B) {
	g := benchGraph(1_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.LocallyDense(g)
	}
}

func BenchmarkExactOrientationUnit2k(b *testing.B) {
	g := benchGraph(2_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.ExactOrientationUnit(g)
	}
}

// --- the three deliverable pipelines end to end ---

func BenchmarkPipelineCoreness20k(b *testing.B) {
	g := benchGraph(20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distkcore.ApproxCoreness(g, 0.5)
	}
}

func BenchmarkPipelineOrientation20k(b *testing.B) {
	g := benchGraph(20_000)
	T := core.TForEpsilon(20_000, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orient.Approximate(g, T)
	}
}

func BenchmarkPipelineWeakDensest5k(b *testing.B) {
	g := benchGraph(5_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		densest.Weak(g, densest.Config{Gamma: 3})
	}
}

func BenchmarkWeakDensestDistributed2k(b *testing.B) {
	g := benchGraph(2_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		densest.RunWeakDistributed(g, densest.Config{Gamma: 3}, dist.SeqEngine{})
	}
}

// --- dynamic maintenance: incremental repair vs from-scratch ---

func BenchmarkDynamicChurn10k(b *testing.B) {
	g := benchGraph(10_000)
	T := core.TForEpsilon(10_000, 0.5)
	m := dynamic.New(g, T)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(10_000), rng.Intn(10_000)
		m.InsertEdge(u, v, 1)
		m.DeleteEdge(u, v)
	}
	b.ReportMetric(float64(m.Stats.Reevaluated)/float64(m.Stats.Updates), "reevals/op")
}

func BenchmarkDynamicScratchBaseline10k(b *testing.B) {
	// what each churn event would cost without the maintainer
	g := benchGraph(10_000)
	T := core.TForEpsilon(10_000, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(g, core.Options{Rounds: T})
	}
}

// --- flow engines head to head (densest-subset network shape) ---

func BenchmarkFlowDinicDensestNet(b *testing.B)       { benchFlow(b, true) }
func BenchmarkFlowPushRelabelDensestNet(b *testing.B) { benchFlow(b, false) }

func benchFlow(b *testing.B, dinic bool) {
	g := benchGraph(2_000)
	rho := g.Density() * 1.5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dinic {
			d := exact.NewDinic(2 + g.M() + g.N())
			buildFlowNet(g, rho, d.AddArc)
			d.MaxFlow(0, 1)
		} else {
			p := exact.NewPushRelabel(2 + g.M() + g.N())
			buildFlowNet(g, rho, p.AddArc)
			p.MaxFlow(0, 1)
		}
	}
}

func buildFlowNet(g *graph.Graph, rho float64, addArc func(int, int, float64) int) {
	inf := math.Inf(1)
	m := g.M()
	for i, e := range g.Edges() {
		addArc(0, 2+i, e.W)
		addArc(2+i, 2+m+e.U, inf)
		if !e.IsLoop() {
			addArc(2+i, 2+m+e.V, inf)
		}
	}
	for v := 0; v < g.N(); v++ {
		addArc(2+m+v, 1, rho)
	}
}

// --- asynchronous engine ---

func BenchmarkAsyncElimination5k(b *testing.B) {
	g := benchGraph(5_000)
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		_, met := core.RunAsyncElimination(g, dist.DelayModel{Base: 1, Jitter: 1, Seed: int64(i)}, 1e9)
		events = met.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// --- hypergraph elimination ---

func BenchmarkHypergraphElimination(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, m := 2_000, 8_000
	edges := make([]hyper.Edge, 0, m)
	for i := 0; i < m; i++ {
		k := 2 + rng.Intn(3)
		edges = append(edges, hyper.Edge{Nodes: rng.Perm(n)[:k], W: 1})
	}
	h, err := hyper.NewHypergraph(n, edges)
	if err != nil {
		b.Fatal(err)
	}
	T := core.TForEpsilon(n, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SurvivingNumbers(T)
	}
}

// --- semi-external streaming passes ---

func BenchmarkSemiExternalCores(b *testing.B) {
	g := benchGraph(20_000)
	path := filepath.Join(b.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g, true); err != nil {
		b.Fatal(err)
	}
	f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := external.CoresFromFile(path, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("no convergence")
		}
	}
}

// --- ablation: stable vs unstable tie-breaking cost ---

func BenchmarkStableTieBreak5k(b *testing.B) {
	g := benchGraph(5_000)
	T := core.TForEpsilon(5_000, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(g, core.Options{Rounds: T, TrackAux: true})
	}
}

func BenchmarkUnstableTieBreak5k(b *testing.B) {
	g := benchGraph(5_000)
	T := core.TForEpsilon(5_000, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunAblatedTieBreak(g, T)
	}
}
